// Operator workflow: from measurements to an installable, priced,
// serialized advertisement plan.
//
//  1. Solve for a configuration under a prefix budget.
//  2. Bind the abstract prefixes to real /24s from the cloud's supernet and
//     price the plan (§2.4: IPv4 prefixes cost > $20k each).
//  3. Measure the plan's global BGP table footprint.
//  4. Serialize the configuration for installation, and parse it back with
//     deployment validation (what an installer at a PoP would do).
//
// Build and run:  ./build/examples/operator_workflow
#include <iostream>
#include <set>
#include <sstream>

#include "painter/painter.h"

int main() {
  using namespace painter;

  // --- World and measurements. ---
  topo::Internet internet = topo::GenerateInternet({.seed = 424, .stub_count = 600});
  cloudsim::Deployment deployment =
      cloudsim::BuildDeployment(internet, {.pop_count = 14});
  cloudsim::PolicyCatalog catalog{internet, deployment};
  cloudsim::IngressResolver resolver{internet, deployment};
  measure::LatencyOracle oracle{internet, deployment, {}};
  util::Rng rng{5};
  const auto instance = core::BuildMeasuredInstance(
      internet, deployment, catalog, resolver, oracle, rng);

  // --- 1. Solve. ---
  core::OrchestratorConfig ocfg;
  ocfg.prefix_budget = 8;
  core::Orchestrator orchestrator{instance, ocfg};
  const auto config = orchestrator.ComputeConfig();
  const auto pred = orchestrator.Predict(config);
  std::cout << "Solved: " << config.PrefixCount() << " prefixes, "
            << config.AnnouncementCount() << " announcements, predicted "
            << util::Table::Num(pred.mean_ms) << " ms mean improvement.\n\n";

  // --- 2. Bind to real address space and price it. ---
  core::PrefixPool pool{core::ParsePrefix("203.0.0.0/18").value(), 24,
                        22000.0};
  const auto plan = core::BindPrefixes(config, pool);
  std::cout << "Address plan from " << pool.supernet().ToString() << " ("
            << pool.Capacity() << " x /24 available):\n";
  util::Table bound{{"prefix", "address block", "sessions", "PoPs"}};
  for (std::size_t p = 0; p < config.PrefixCount(); ++p) {
    std::set<std::uint32_t> pops;
    for (const auto sid : config.Sessions(p)) {
      pops.insert(deployment.peering(sid).pop.value());
    }
    bound.AddRow({std::to_string(p), plan.prefix_of_index[p].ToString(),
                  std::to_string(config.Sessions(p).size()),
                  std::to_string(pops.size())});
  }
  bound.Print(std::cout);
  std::cout << "Prefix bill: $" << util::Table::Num(plan.cost_usd, 0)
            << " (pool now " << pool.Allocated() << "/" << pool.Capacity()
            << " allocated).\n\n";

  // --- 3. Global table footprint. ---
  const auto fp = core::ComputeRibFootprint(config, resolver);
  std::cout << "Global BGP table impact: " << fp.total_entries
            << " (prefix, AS) RIB entries across "
            << internet.graph.size() << " ASes.\n\n";

  // --- 4. Serialize, then validate-parse as the installer would. ---
  const std::string wire = core::ConfigToString(config);
  std::cout << "Serialized configuration (" << wire.size() << " bytes):\n"
            << wire << "\n";
  core::ParseError err;
  const auto parsed = core::ConfigFromString(wire, &deployment, &err);
  if (!parsed.has_value()) {
    std::cerr << "installer rejected the config at line " << err.line << ": "
              << err.message << "\n";
    return 1;
  }
  std::cout << "Installer validation: OK ("
            << parsed->AnnouncementCount() << " announcements against "
            << deployment.peerings().size() << " sessions).\n";

  // Control channel: what each service's TM-Edges will see.
  tm::PrefixDirectory directory{deployment};
  directory.Install(*parsed);
  std::cout << "Control channel: " << directory.PrefixCount()
            << " destinations resolvable by TM-Edges.\n";
  return 0;
}
