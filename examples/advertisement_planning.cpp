// Advertisement planning session: how an operator would drive the
// Advertisement Orchestrator.
//
// Azure could not run experimental announcements (§4), so planning happens
// against *estimated* latencies from geolocated measurement targets
// (Appendix B). This example builds that estimated view, solves for an
// advertisement plan under a prefix budget, inspects the plan (which
// peerings share a prefix, at which PoPs), compares D_reuse settings, and
// prints the benefit the model predicts with its uncertainty range.
//
// Build and run:  ./build/examples/advertisement_planning
#include <iostream>
#include <set>

#include "cloudsim/deployment.h"
#include "cloudsim/ingress.h"
#include "core/evaluate.h"
#include "core/orchestrator.h"
#include "measure/geolocation.h"
#include "measure/latency.h"
#include "topo/generator.h"
#include "util/table.h"

int main() {
  using namespace painter;

  topo::InternetConfig icfg;
  icfg.seed = 7;
  icfg.stub_count = 900;
  topo::Internet internet = topo::GenerateInternet(icfg);
  cloudsim::DeploymentConfig dcfg;
  dcfg.pop_count = 16;
  cloudsim::Deployment deployment = cloudsim::BuildDeployment(internet, dcfg);
  cloudsim::PolicyCatalog catalog{internet, deployment};
  cloudsim::IngressResolver resolver{internet, deployment};
  measure::LatencyOracle oracle{internet, deployment, {}};

  // Latency estimation through geolocated targets at GP = 450 km.
  measure::GeoTargetCatalog targets{oracle, {}};
  util::Rng rng{3};
  const auto instance = core::BuildEstimatedInstance(
      internet, deployment, catalog, resolver, oracle, targets, rng, 450.0);

  std::cout << "Planning over " << deployment.peerings().size()
            << " peering sessions at " << deployment.pops().size()
            << " PoPs for " << instance.UgCount() << " user groups.\n";
  std::cout << "Modeled headroom over anycast: "
            << util::Table::Num(instance.TotalPossibleBenefitMs())
            << " ms (traffic-weighted average).\n\n";

  // --- Solve under a 10-prefix budget. ---
  core::OrchestratorConfig ocfg;
  ocfg.prefix_budget = 10;
  core::Orchestrator orchestrator{instance, ocfg};
  const auto plan = orchestrator.ComputeConfig();
  const auto pred = orchestrator.Predict(plan);

  std::cout << "Plan with budget 10 (D_reuse = 3000 km):\n";
  util::Table plan_table{{"prefix", "sessions", "PoPs", "example peerings"}};
  for (std::size_t p = 0; p < plan.PrefixCount(); ++p) {
    std::set<std::string> pops;
    std::string sample;
    for (const auto sid : plan.Sessions(p)) {
      const auto& sess = deployment.peering(sid);
      pops.insert(deployment.pop(sess.pop).name);
      if (sample.size() < 48) {
        sample += internet.graph.info(sess.peer).name + "@" +
                  deployment.pop(sess.pop).name + " ";
      }
    }
    plan_table.AddRow({std::to_string(p),
                       std::to_string(plan.Sessions(p).size()),
                       std::to_string(pops.size()), sample});
  }
  plan_table.Print(std::cout);
  std::cout << "Predicted improvement: mean "
            << util::Table::Num(pred.mean_ms) << " ms, range ["
            << util::Table::Num(pred.lower_ms) << ", "
            << util::Table::Num(pred.upper_ms)
            << "] ms before any advertisement is executed.\n\n";

  // --- D_reuse sensitivity: cost vs certainty. ---
  std::cout << "D_reuse sensitivity at budget 10:\n";
  util::Table dr{{"D_reuse (km)", "announcements", "predicted mean (ms)",
                  "uncertainty (ms)"}};
  for (const double d : {1000.0, 2000.0, 3000.0}) {
    core::OrchestratorConfig c;
    c.prefix_budget = 10;
    c.d_reuse_km = d;
    core::Orchestrator o{instance, c};
    const auto cfg = o.ComputeConfig();
    const auto pr = o.Predict(cfg);
    dr.AddRow({util::Table::Num(d, 0), std::to_string(cfg.AnnouncementCount()),
               util::Table::Num(pr.mean_ms),
               util::Table::Num(pr.upper_ms - pr.lower_ms)});
  }
  dr.Print(std::cout);

  // --- Ablation: what reuse buys at this budget. ---
  core::OrchestratorConfig no_reuse = ocfg;
  no_reuse.enable_reuse = false;
  core::Orchestrator without{instance, no_reuse};
  const auto pred_nr = without.Predict(without.ComputeConfig());
  std::cout << "\nPrefix reuse at budget 10 adds "
            << util::Table::Num(pred.mean_ms - pred_nr.mean_ms)
            << " ms of predicted benefit over one-peering-per-prefix.\n";
  return 0;
}
