// Enterprise failover walkthrough (the Fig. 1 / Fig. 10 scenario).
//
// An enterprise branch office runs a cloud-edge network stack hosting a
// TM-Edge. The TM-Edge keeps tunnels to the anycast prefix and to several
// PAINTER unicast prefixes, pins each flow to the destination that is best
// when the flow starts, and probes continuously. We kill the PoP behind the
// chosen prefix mid-run and watch: the pinned long flow breaks (immutable
// mapping, §3.2), new flows land on the next-best prefix within ~1 RTT, and
// the anycast prefix needs seconds to become usable again.
//
// Build and run:  ./build/examples/enterprise_failover
#include <iostream>

#include "netsim/path.h"
#include "faultsim/failover_scenario.h"
#include "tm/tm_edge.h"
#include "tm/tm_pop.h"
#include "util/table.h"

int main() {
  using namespace painter;

  std::cout << "Enterprise branch office: TM-Edge with 5 tunnels "
               "(anycast + 4 PAINTER prefixes). PoP-A fails at t=60 s.\n\n";

  tm::FailoverScenarioConfig cfg;
  cfg.flow_packets = 1500;
  cfg.flow_packet_interval_s = 0.04;
  const auto result = tm::RunFailoverScenario(cfg);

  std::cout << "Destinations resolved via the control channel:\n";
  for (std::size_t i = 0; i < result.tunnel_names.size(); ++i) {
    std::cout << "  tunnel " << i << ": " << result.tunnel_names[i] << "\n";
  }

  std::cout << "\nFailovers observed:\n";
  util::Table fo{{"t (s)", "from", "to"}};
  for (const auto& ev : result.failovers) {
    fo.AddRow({util::Table::Num(ev.t, 3),
               ev.from >= 0 ? result.tunnel_names[ev.from] : "(none)",
               ev.to >= 0 ? result.tunnel_names[ev.to] : "(none)"});
  }
  fo.Print(std::cout);

  std::cout << "\nPoP failure detected and rerouted in "
            << util::Table::Num(result.detection_delay_s * 1000.0, 1)
            << " ms (~"
            << util::Table::Num(result.detection_delay_s / (2 * cfg.chosen_delay_s), 2)
            << " RTT). Data packets: PoP-A " << result.pop_a_data_packets
            << ", PoP-B " << result.pop_b_data_packets << ".\n";

  // --- A second, self-contained demo of the Known Flows NAT at a TM-PoP. ---
  std::cout << "\nTM-PoP NAT behaviour (Appendix D):\n";
  netsim::Simulator sim;
  tm::TmPop pop{sim, "PoP-demo", {0xC0A80001, 0xC0A80002}};
  std::size_t responses = 0;
  for (std::uint32_t i = 0; i < 5; ++i) {
    netsim::Packet p;
    p.kind = netsim::PacketKind::kData;
    p.inner = netsim::FlowKey{.src_ip = 0x0A000000u + i,
                              .dst_ip = 0x08080808,
                              .src_port = static_cast<netsim::Port>(40000 + i),
                              .dst_port = 443};
    p.payload_bytes = 1200;
    pop.HandleArrival(p, [&](const netsim::Packet&) { ++responses; });
  }
  sim.Run(1.0);
  std::cout << "  5 client flows -> " << pop.nat().ActiveBindings()
            << " NAT bindings, " << responses
            << " responses returned through the tunnel; capacity "
            << pop.nat().Capacity() << " flows ("
            << "65k per TM-PoP address).\n";
  return 0;
}
