// Quickstart: the whole PAINTER pipeline in one file.
//
//  1. Generate a synthetic Internet and attach a cloud deployment.
//  2. Measure anycast and per-ingress latencies (the TM-Edge's job).
//  3. Run the Advertisement Orchestrator (Algorithm 1) with a prefix budget.
//  4. Execute the advertisements against the BGP simulation, learn from the
//     observed ingresses, and report realized latency improvement.
//
// Build and run:  ./build/examples/quickstart
#include <iostream>

#include "cloudsim/deployment.h"
#include "cloudsim/ingress.h"
#include "core/evaluate.h"
#include "core/orchestrator.h"
#include "core/sim_environment.h"
#include "measure/latency.h"
#include "topo/generator.h"
#include "util/table.h"

int main() {
  using namespace painter;

  // --- 1. World: a small Internet and a 12-PoP cloud. ---
  topo::InternetConfig icfg;
  icfg.seed = 2023;
  icfg.stub_count = 800;
  topo::Internet internet = topo::GenerateInternet(icfg);

  cloudsim::DeploymentConfig dcfg;
  dcfg.pop_count = 12;
  cloudsim::Deployment deployment = cloudsim::BuildDeployment(internet, dcfg);
  std::cout << "Deployment: " << deployment.pops().size() << " PoPs, "
            << deployment.peerings().size() << " peering sessions, "
            << deployment.ugs().size() << " user groups\n";

  cloudsim::PolicyCatalog catalog{internet, deployment};
  cloudsim::IngressResolver resolver{internet, deployment};
  measure::LatencyOracle oracle{internet, deployment, {}};
  std::cout << "Policy-compliant ingresses per UG (mean): "
            << catalog.MeanCompliantPerUg() << "\n";

  // --- 2. Measurement: min-of-7 pings per compliant ingress. ---
  util::Rng rng{7};
  const core::ProblemInstance instance = core::BuildMeasuredInstance(
      internet, deployment, catalog, resolver, oracle, rng);
  std::cout << "Total possible improvement over anycast: "
            << util::Table::Num(instance.TotalPossibleBenefitMs()) << " ms\n";

  // --- 3+4. Orchestrate with a budget of 12 prefixes, learning enabled. ---
  core::OrchestratorConfig ocfg;
  ocfg.prefix_budget = 12;
  ocfg.d_reuse_km = 3000.0;
  ocfg.max_learning_iterations = 4;
  core::Orchestrator orchestrator{instance, ocfg};
  core::SimEnvironment env{resolver, oracle, util::Rng{13}};

  const auto reports = orchestrator.Learn(env);
  util::Table table{{"iteration", "prefixes", "announcements",
                     "predicted (ms)", "realized (ms)", "uncertainty (ms)"}};
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const auto& r = reports[i];
    table.AddRow({std::to_string(i + 1), std::to_string(r.prefixes_used),
                  std::to_string(r.config.AnnouncementCount()),
                  util::Table::Num(r.predicted.mean_ms),
                  util::Table::Num(r.realized_ms),
                  util::Table::Num(r.predicted.upper_ms -
                                   r.predicted.lower_ms)});
  }
  table.Print(std::cout);

  const auto& final_cfg = reports.back().config;
  std::cout << "\nFinal configuration: " << final_cfg.NonEmptyPrefixCount()
            << " prefixes covering " << final_cfg.AnnouncementCount()
            << " (peering, prefix) announcements\n";
  std::cout << "Realized improvement "
            << util::Table::Num(reports.back().realized_ms) << " ms of "
            << util::Table::Num(instance.TotalPossibleBenefitMs())
            << " ms possible\n";
  return 0;
}
